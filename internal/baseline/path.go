package baseline

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/graphlet"
)

// PathSampler implements Jha-Seshadhri-Pinar 3-path sampling for 4-node
// graphlet counts: an edge e = (u,v) is drawn with probability proportional
// to τ_e = (d_u-1)(d_v-1), then uniform neighbors u' of u (≠v) and v' of v
// (≠u) complete a uniformly random (possibly degenerate) 3-path. Each sample
// is classified by the induced subgraph of its (up to) four distinct nodes;
// counts follow from the per-type 3-path multiplicities. Preprocessing is
// O(|E|), sampling O(log |E|) per draw — the costs §6.3.2 compares against.
type PathSampler struct {
	g     *graph.Graph
	edges [][2]int32
	cum   []float64
	// TotalPaths is W = Σ_e τ_e, the number of (centered) 3-path samples.
	TotalPaths float64
}

// pathMult[i] is the number of non-induced 3-paths in 4-node graphlet type
// i+1: path 1, star 0, cycle 4, tailed-triangle 2, chordal-cycle 6,
// clique 12.
var pathMult = [6]float64{1, 0, 4, 2, 6, 12}

// NewPathSampler preprocesses g.
func NewPathSampler(g *graph.Graph) *PathSampler {
	s := &PathSampler{g: g}
	total := 0.0
	g.Edges(func(u, v int32) bool {
		t := float64(g.Degree(u)-1) * float64(g.Degree(v)-1)
		if t > 0 {
			s.edges = append(s.edges, [2]int32{u, v})
			total += t
			s.cum = append(s.cum, total)
		}
		return true
	})
	s.TotalPaths = total
	return s
}

// PathResult aggregates a 3-path sampling run.
type PathResult struct {
	Samples    int
	TypeCounts [6]int64 // valid samples (4 distinct nodes) per 4-node type
	TotalPaths float64
	// NonInducedStars is Σ_v C(d_v, 3), computed exactly during estimation
	// (stars contain no 3-path, so they need the degree-based side count, as
	// in the original paper).
	NonInducedStars float64
}

// Counts returns the estimated induced 4-node graphlet counts in paper
// order. Types with a 3-path (all but the 3-star) are estimated from sample
// fractions; the 3-star count is recovered from the exact non-induced star
// count minus the estimated contributions of denser types.
func (r PathResult) Counts() []float64 {
	out := make([]float64, 6)
	if r.Samples == 0 {
		return out
	}
	for i := 0; i < 6; i++ {
		if pathMult[i] == 0 {
			continue
		}
		frac := float64(r.TypeCounts[i]) / float64(r.Samples)
		out[i] = frac * r.TotalPaths / pathMult[i]
	}
	// Induced stars = non-induced stars - tailed - 2*chordal - 4*clique.
	out[1] = r.NonInducedStars - out[3] - 2*out[4] - 4*out[5]
	if out[1] < 0 {
		out[1] = 0
	}
	return out
}

// Concentration normalizes Counts.
func (r PathResult) Concentration() []float64 {
	c := r.Counts()
	sum := 0.0
	for _, x := range c {
		sum += x
	}
	if sum == 0 {
		return c
	}
	for i := range c {
		c[i] /= sum
	}
	return c
}

// Sample draws n independent 3-paths.
func (s *PathSampler) Sample(n int, rng *rand.Rand) PathResult {
	res := PathResult{Samples: n, TotalPaths: s.TotalPaths}
	for v := 0; v < s.g.NumNodes(); v++ {
		d := float64(s.g.Degree(int32(v)))
		res.NonInducedStars += d * (d - 1) * (d - 2) / 6
	}
	var nodes [4]int32
	for i := 0; i < n; i++ {
		e := s.sampleEdge(rng)
		u, v := e[0], e[1]
		up := s.randomNeighborExcept(u, v, rng)
		vp := s.randomNeighborExcept(v, u, rng)
		nodes[0], nodes[1], nodes[2], nodes[3] = u, v, up, vp
		if up == vp || up == v || vp == u {
			continue // degenerate: fewer than 4 distinct nodes
		}
		code := graphlet.CodeOf(4, func(a, b int) bool {
			return s.g.HasEdge(nodes[a], nodes[b])
		})
		if t := graphlet.ClassifyCode(4, code); t >= 0 {
			res.TypeCounts[t]++
		}
	}
	return res
}

func (s *PathSampler) sampleEdge(rng *rand.Rand) [2]int32 {
	x := rng.Float64() * s.TotalPaths
	i := sort.SearchFloat64s(s.cum, x)
	if i >= len(s.edges) {
		i = len(s.edges) - 1
	}
	return s.edges[i]
}

func (s *PathSampler) randomNeighborExcept(v, not int32, rng *rand.Rand) int32 {
	d := s.g.Degree(v)
	// τ_e > 0 guarantees d >= 2, so a neighbor ≠ not exists.
	for {
		w := s.g.Neighbor(v, rng.Intn(d))
		if w != not {
			return w
		}
	}
}
