// Serializable run state: an estimation run is a state machine whose
// complete position — per-walker RNG stream position, walk position, sliding
// window, and accumulator — can be exported at any checkpoint barrier
// (Estimator.Snapshot), encoded to a compact versioned binary blob, and
// restored into a fresh Estimator (Estimator.Restore) to continue the run.
// A resumed run is byte-identical to an uninterrupted one at any GOMAXPROCS:
// the RNG stream is reconstructed by seed + fast-forward, float64 fields
// round-trip as IEEE-754 bits, and the ensemble's quota split is a pure
// function of the window counts.

package core

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/walk"
)

// WalkerState is the complete resumable state of one walker, captured while
// the ensemble is quiescent at a checkpoint barrier.
type WalkerState struct {
	// RNGPos is the walker's RNG stream position (walk.Rand.Pos); the seed is
	// derived from (Config.Seed, walker index), so it is not stored.
	RNGPos uint64
	// Seeded/Primed mirror the walker's lifecycle flags: start state drawn,
	// burn-in done and window filled.
	Seeded bool
	Primed bool

	// Walk position (meaningful when Seeded).
	Steps   int64 // transitions taken
	HasPrev bool
	Cur     []int32
	Prev    []int32

	// Sliding window in walk order, oldest first (meaningful when Primed).
	Win  [][]int32
	Degs []int

	// Private accumulator (the walker's share of the merged Result).
	ResSteps     int
	ValidSamples int
	Weights      []float64
	TypeCounts   []int64
	StarAcc      float64
}

// EnsembleState is the serializable state of a whole estimation run.
type EnsembleState struct {
	// Config is the configuration the state was captured under; Restore
	// refuses a mismatch (a resumed run must re-create the same trajectory).
	Config Config
	// WindowsDone is the ensemble-wide checkpoint target reached: the number
	// of windows processed, summed over walkers, when the snapshot was taken.
	WindowsDone int
	Walkers     []WalkerState
}

// Binary layout: magic, format version, Config, WindowsDone, then each
// walker. Integers are varints (zigzag for signed), float64s are fixed
// 8-byte IEEE-754 bits (exact round-trip), booleans are packed into flag
// bytes. The format is version-gated: decoding a snapshot written by a
// future format fails loudly instead of misinterpreting it.
const (
	stateMagic   = "GEST"
	stateVersion = 1

	// Decode-side sanity caps: a corrupt length prefix must produce an error,
	// not an absurd allocation.
	maxStateWalkers = 1 << 16
	maxStateWindow  = 64
	maxStateTypes   = 4096
)

// Encode renders the state as a versioned binary blob.
func (st *EnsembleState) Encode() []byte {
	buf := make([]byte, 0, 256+len(st.Walkers)*256)
	buf = append(buf, stateMagic...)
	buf = binary.AppendUvarint(buf, stateVersion)

	c := st.Config
	buf = binary.AppendVarint(buf, int64(c.K))
	buf = binary.AppendVarint(buf, int64(c.D))
	buf = append(buf, packBools(c.CSS, c.NB, c.RecoverStars))
	buf = binary.AppendVarint(buf, int64(c.BurnIn))
	buf = binary.AppendVarint(buf, int64(c.Walkers))
	buf = binary.AppendVarint(buf, c.Seed)

	buf = binary.AppendVarint(buf, int64(st.WindowsDone))
	buf = binary.AppendUvarint(buf, uint64(len(st.Walkers)))
	for i := range st.Walkers {
		buf = st.Walkers[i].encode(buf)
	}
	return buf
}

func (w *WalkerState) encode(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, w.RNGPos)
	buf = append(buf, packBools(w.Seeded, w.Primed, w.HasPrev))
	buf = binary.AppendVarint(buf, w.Steps)
	buf = appendNodes(buf, w.Cur)
	buf = appendNodes(buf, w.Prev)
	buf = binary.AppendUvarint(buf, uint64(len(w.Win)))
	for _, s := range w.Win {
		buf = appendNodes(buf, s)
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.Degs)))
	for _, d := range w.Degs {
		buf = binary.AppendVarint(buf, int64(d))
	}
	buf = binary.AppendVarint(buf, int64(w.ResSteps))
	buf = binary.AppendVarint(buf, int64(w.ValidSamples))
	buf = binary.AppendUvarint(buf, uint64(len(w.Weights)))
	for _, f := range w.Weights {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
	}
	buf = binary.AppendUvarint(buf, uint64(len(w.TypeCounts)))
	for _, n := range w.TypeCounts {
		buf = binary.AppendVarint(buf, n)
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.StarAcc))
	return buf
}

func appendNodes(buf []byte, nodes []int32) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(nodes)))
	for _, v := range nodes {
		buf = binary.AppendVarint(buf, int64(v))
	}
	return buf
}

func packBools(bs ...bool) byte {
	var b byte
	for i, v := range bs {
		if v {
			b |= 1 << uint(i)
		}
	}
	return b
}

// DecodeEnsembleState parses a blob produced by Encode. Every length and
// range is validated, so arbitrary (truncated, corrupt, adversarial) input
// produces an error, never a panic or an absurd allocation.
func DecodeEnsembleState(data []byte) (*EnsembleState, error) {
	d := &stateDecoder{data: data}
	if string(d.bytes(len(stateMagic))) != stateMagic {
		return nil, fmt.Errorf("core: ensemble state: bad magic")
	}
	if v := d.uvarint(); d.err == nil && v != stateVersion {
		return nil, fmt.Errorf("core: ensemble state: unsupported format version %d (have %d)", v, stateVersion)
	}

	st := &EnsembleState{}
	st.Config.K = int(d.varint())
	st.Config.D = int(d.varint())
	st.Config.CSS, st.Config.NB, st.Config.RecoverStars = d.unpackBools()
	st.Config.BurnIn = int(d.varint())
	st.Config.Walkers = int(d.varint())
	st.Config.Seed = d.varint()

	st.WindowsDone = int(d.varint())
	n := d.uvarint()
	if d.err == nil && n > maxStateWalkers {
		return nil, fmt.Errorf("core: ensemble state: %d walkers exceeds cap", n)
	}
	if d.err == nil {
		st.Walkers = make([]WalkerState, n)
		for i := range st.Walkers {
			st.Walkers[i].decode(d)
		}
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: ensemble state: %w", d.err)
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("core: ensemble state: %d trailing bytes", len(d.data)-d.off)
	}
	if st.WindowsDone < 0 {
		return nil, fmt.Errorf("core: ensemble state: negative windows done %d", st.WindowsDone)
	}
	return st, nil
}

func (w *WalkerState) decode(d *stateDecoder) {
	w.RNGPos = d.uvarint()
	w.Seeded, w.Primed, w.HasPrev = d.unpackBools()
	w.Steps = d.varint()
	w.Cur = d.nodes()
	w.Prev = d.nodes()
	nWin := d.uvarint()
	if d.err == nil && nWin > maxStateWindow {
		d.fail("window length %d exceeds cap", nWin)
	}
	if d.err == nil && nWin > 0 {
		w.Win = make([][]int32, nWin)
		for i := range w.Win {
			w.Win[i] = d.nodes()
		}
	}
	nDeg := d.uvarint()
	if d.err == nil && nDeg > maxStateWindow {
		d.fail("degree list length %d exceeds cap", nDeg)
	}
	if d.err == nil && nDeg > 0 {
		w.Degs = make([]int, nDeg)
		for i := range w.Degs {
			w.Degs[i] = int(d.varint())
		}
	}
	w.ResSteps = int(d.varint())
	w.ValidSamples = int(d.varint())
	nW := d.uvarint()
	if d.err == nil && nW > maxStateTypes {
		d.fail("weights length %d exceeds cap", nW)
	}
	if d.err == nil && nW > 0 {
		w.Weights = make([]float64, nW)
		for i := range w.Weights {
			w.Weights[i] = d.float64()
		}
	}
	nT := d.uvarint()
	if d.err == nil && nT > maxStateTypes {
		d.fail("type counts length %d exceeds cap", nT)
	}
	if d.err == nil && nT > 0 {
		w.TypeCounts = make([]int64, nT)
		for i := range w.TypeCounts {
			w.TypeCounts[i] = d.varint()
		}
	}
	w.StarAcc = d.float64()
}

// unpackBools reads a flag byte written by packBools; unknown high bits are
// rejected (they would belong to a format this decoder does not understand).
func (d *stateDecoder) unpackBools() (bool, bool, bool) {
	b := d.byte()
	if b&^byte(7) != 0 {
		d.fail("unknown flag bits 0x%02x", b)
	}
	return b&1 != 0, b&2 != 0, b&4 != 0
}

// stateDecoder is a bounds-checked cursor over an encoded blob; the first
// failure sticks and every later read returns zero values.
type stateDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *stateDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf(format, args...)
	}
}

func (d *stateDecoder) bytes(n int) []byte {
	if d.err != nil || d.off+n > len(d.data) {
		d.fail("truncated at offset %d", d.off)
		return make([]byte, n)
	}
	out := d.data[d.off : d.off+n]
	d.off += n
	return out
}

func (d *stateDecoder) byte() byte { return d.bytes(1)[0] }

func (d *stateDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *stateDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail("bad varint at offset %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// float64 reads a fixed 8-byte IEEE-754 value. The accumulator fields are
// finite sums of finite weights, so NaN or Inf here is corruption.
func (d *stateDecoder) float64() float64 {
	f := math.Float64frombits(binary.LittleEndian.Uint64(d.bytes(8)))
	if math.IsNaN(f) || math.IsInf(f, 0) {
		d.fail("non-finite accumulator value")
	}
	return f
}

// nodes reads a node list, bounding its length by the walk-state maximum.
func (d *stateDecoder) nodes() []int32 {
	n := d.uvarint()
	if d.err != nil || n == 0 {
		return nil
	}
	if n > walk.MaxD {
		d.fail("state of %d nodes exceeds walk.MaxD", n)
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.varint())
	}
	return out
}

// stateOf validates a decoded node list as a walk state with exactly want
// nodes (walk.StateOf panics on duplicates, which decode-side validation
// must turn into errors).
func stateOf(nodes []int32, want int) (walk.State, error) {
	if len(nodes) != want {
		return walk.State{}, fmt.Errorf("core: state has %d nodes, want %d", len(nodes), want)
	}
	sorted := append([]int32(nil), nodes...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return walk.State{}, fmt.Errorf("core: state has duplicate node %d", sorted[i])
		}
	}
	return walk.StateOf(sorted...), nil
}
