// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON file, so the repository's perf trajectory can be
// tracked across PRs (BENCH_<pr>.json artifacts in CI):
//
//	go test -run '^$' -bench 'ParallelWalkers|Step' -benchtime 3x . |
//	    go run ./cmd/benchjson -out BENCH_pr2.json
//
// Every benchmark line is parsed into its name, iteration count, and all
// reported metrics (ns/op, and custom b.ReportMetric units such as ns/step
// and steps/sec from BenchmarkParallelWalkers). Context lines (goos, goarch,
// cpu, pkg) are captured as metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result.
type Benchmark struct {
	// Name is the benchmark name without the "Benchmark" prefix and the
	// trailing -GOMAXPROCS suffix, e.g. "ParallelWalkers/walkers=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix of the raw name (0 if absent).
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the file layout of BENCH_*.json.
type Report struct {
	Meta       map[string]string `json:"meta,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

func main() {
	var (
		in  = flag.String("in", "", "bench output file (default: stdin)")
		out = flag.String("out", "", "JSON output file (default: stdout)")
	)
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		src = f
	}
	report, err := Parse(src)
	if err != nil {
		fail(err)
	}
	if len(report.Benchmarks) == 0 {
		fail(fmt.Errorf("no benchmark lines found in input"))
	}

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// Parse reads `go test -bench` output and extracts all benchmark results.
func Parse(r io.Reader) (*Report, error) {
	report := &Report{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos", "goarch", "pkg", "cpu"} {
			if v, ok := strings.CutPrefix(line, key+": "); ok {
				report.Meta[key] = strings.TrimSpace(v)
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		b, ok := parseLine(line)
		if ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	return report, sc.Err()
}

// parseLine parses one result line:
//
//	BenchmarkName/sub-8   100   12.3 ns/op   4.5 ns/step   2.1e+07 steps/sec
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	procs := 0
	if i := strings.LastIndex(name, "-"); i > 0 {
		if p, err := strconv.Atoi(name[i+1:]); err == nil {
			procs = p
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
