package core

import (
	"reflect"
	"testing"

	"repro/internal/access"
	"repro/internal/walk"
)

// TestResumeByteIdentical is the SIGKILL-semantics proof of the serializable
// state machine: capture a snapshot at a mid-run checkpoint barrier (exactly
// what the service journals), encode and decode it, restore it into a fresh
// estimator, run to completion — the result must be byte-identical to the
// uninterrupted run, for single- and multi-walker ensembles and every
// accumulator variant (plain, CSS, NB, RecoverStars).
func TestResumeByteIdentical(t *testing.T) {
	g := convGraph()
	client := access.NewGraphClient(g)
	const n, every, interruptAt = 4000, 500, 2000
	for _, cfg := range []Config{
		{K: 3, D: 1, Seed: 17, Walkers: 1},
		{K: 4, D: 2, CSS: true, Seed: 99, Walkers: 4},
		{K: 4, D: 2, CSS: true, NB: true, Seed: 7, Walkers: 8},
		{K: 4, D: 1, RecoverStars: true, Seed: 31, Walkers: 3},
		{K: 5, D: 3, CSS: true, Seed: 23, Walkers: 2},
	} {
		full, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// The uninterrupted run, snapshotting mid-flight like the service does
		// (the snapshot must not perturb the run).
		var blob []byte
		want, err := full.RunCheckpoints(n, every, func(step int, conc []float64) {
			if step == interruptAt {
				blob = full.Snapshot().Encode()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if blob == nil {
			t.Fatalf("%s: no snapshot captured", cfg.MethodName())
		}

		st, err := DecodeEnsembleState(blob)
		if err != nil {
			t.Fatalf("%s: decode: %v", cfg.MethodName(), err)
		}
		if st.WindowsDone != interruptAt {
			t.Fatalf("%s: snapshot at %d windows, want %d", cfg.MethodName(), st.WindowsDone, interruptAt)
		}
		resumed, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := resumed.Restore(st); err != nil {
			t.Fatalf("%s: restore: %v", cfg.MethodName(), err)
		}
		got, err := resumed.RunCheckpoints(n, every, func(int, []float64) {})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: resumed result differs from uninterrupted run:\n got %+v\nwant %+v",
				cfg.MethodName(), got, want)
		}
	}
}

// A snapshot taken at the final barrier resumes to an immediately complete
// run (the crash-after-last-checkpoint case).
func TestResumeAtFullBudget(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	cfg := Config{K: 3, D: 1, Seed: 5, Walkers: 2}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := est.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	st := est.Snapshot()
	re, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Restore(st); err != nil {
		t.Fatal(err)
	}
	got, err := re.Run(1000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("zero-remaining resume diverged:\n got %+v\nwant %+v", got, want)
	}
}

// Restore validation: config mismatches and structurally impossible states
// are rejected with errors, never panics.
func TestRestoreValidation(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	cfg := Config{K: 4, D: 2, Seed: 9, Walkers: 2}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Run(600); err != nil {
		t.Fatal(err)
	}
	good := est.Snapshot()

	fresh := func() *Estimator {
		e, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if err := fresh().Restore(nil); err == nil {
		t.Error("nil state accepted")
	}
	other := *good
	other.Config.Seed++
	if err := fresh().Restore(&other); err == nil {
		t.Error("config mismatch accepted")
	}
	short := *good
	short.Walkers = good.Walkers[:1]
	if err := fresh().Restore(&short); err == nil {
		t.Error("walker-count mismatch accepted")
	}
	skew := *good
	skew.Walkers = append([]WalkerState(nil), good.Walkers...)
	skew.Walkers[0].ResSteps++
	if err := fresh().Restore(&skew); err == nil {
		t.Error("quota-inconsistent state accepted")
	}
	e := fresh()
	if err := e.Restore(good); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunCheckpoints(100, 0, nil); err == nil {
		t.Error("restored state beyond the budget accepted")
	}
}

// Decoding truncated and bit-flipped snapshots errors instead of panicking,
// and a valid blob round-trips exactly.
func TestEnsembleStateDecodeRobust(t *testing.T) {
	client := access.NewGraphClient(convGraph())
	est, err := NewEstimator(client, Config{K: 4, D: 2, CSS: true, Seed: 3, Walkers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Run(800); err != nil {
		t.Fatal(err)
	}
	blob := est.Snapshot().Encode()

	st, err := DecodeEnsembleState(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(st.Encode(), blob) {
		t.Error("encode/decode/encode is not a fixed point")
	}
	for cut := 0; cut < len(blob); cut += 7 {
		if _, err := DecodeEnsembleState(blob[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	if _, err := DecodeEnsembleState(append(append([]byte(nil), blob...), 0xFF)); err == nil {
		t.Error("trailing garbage decoded cleanly")
	}
}

// FuzzDecodeEnsembleState hammers the decoder (and Restore on whatever
// decodes) with arbitrary bytes: the only acceptable failure mode is an
// error return.
func FuzzDecodeEnsembleState(f *testing.F) {
	client := access.NewGraphClient(convGraph())
	cfg := Config{K: 4, D: 2, CSS: true, Seed: 3, Walkers: 2}
	est, err := NewEstimator(client, cfg)
	if err != nil {
		f.Fatal(err)
	}
	if _, err := est.Run(600); err != nil {
		f.Fatal(err)
	}
	blob := est.Snapshot().Encode()
	f.Add(blob)
	f.Add(blob[:len(blob)/2])
	f.Add([]byte("GEST"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeEnsembleState(data)
		if err != nil {
			return
		}
		// Canonical round trip: whatever decodes must re-encode to a blob
		// that decodes back to the same structure (byte equality with the
		// input is not required — varints have non-canonical encodings).
		st2, err := DecodeEnsembleState(st.Encode())
		if err != nil {
			t.Fatalf("re-encoding a decoded state does not decode: %v", err)
		}
		if !reflect.DeepEqual(st, st2) {
			t.Fatal("decode/encode/decode is not stable")
		}
		e, err := NewEstimator(client, cfg)
		if err != nil {
			t.Fatal(err)
		}
		_ = e.Restore(st) // must not panic; errors are fine
	})
}

// The seekable RNG reproduces math/rand streams exactly and fast-forwards to
// any position.
func TestSeekableRand(t *testing.T) {
	r := walk.NewRand(42)
	var ref []int
	for i := 0; i < 100; i++ {
		ref = append(ref, r.Intn(1000))
	}
	mid := walk.NewRand(42)
	for i := 0; i < 50; i++ {
		if got := mid.Intn(1000); got != ref[i] {
			t.Fatalf("draw %d: %d, want %d", i, got, ref[i])
		}
	}
	ff := walk.NewRandAt(42, mid.Pos())
	if ff.Pos() != mid.Pos() {
		t.Fatalf("fast-forward position %d, want %d", ff.Pos(), mid.Pos())
	}
	for i := 50; i < 100; i++ {
		if got := ff.Intn(1000); got != ref[i] {
			t.Fatalf("resumed draw %d: %d, want %d", i, got, ref[i])
		}
	}
}
