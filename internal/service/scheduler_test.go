package service

import (
	"strings"
	"testing"
)

func schedJob(id string, p Priority, steps int) *job {
	return &job{id: id, spec: Spec{Steps: steps, Priority: p}, state: StateQueued}
}

// The weighted-deficit dispatch order: ties break toward the more urgent
// class, and a class's pass advances by cost/weight, so cheap interactive
// jobs overtake expensive background ones while background still gets its
// proportional turn.
func TestSchedulerDispatchOrder(t *testing.T) {
	s := newScheduler(16, nil)
	jobs := []*job{
		schedJob("A", PriorityInteractive, 6400), // +100 per dispatch
		schedJob("B", PriorityInteractive, 6400),
		schedJob("C", PriorityBackground, 50), // +50
		schedJob("D", PriorityBatch, 800),     // +100
	}
	for _, j := range jobs {
		if err := s.enqueue(j); err != nil {
			t.Fatal(err)
		}
	}
	var got []string
	for i := 0; i < len(jobs); i++ {
		j, ok := s.next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		got = append(got, j.id)
	}
	// Pass trace: all classes start at 0; rank breaks the tie for A
	// (interactive). Then batch and background tie at 0 and batch outranks:
	// D. Then background (0) precedes interactive (100): C. B last.
	if want := "A,D,C,B"; strings.Join(got, ",") != want {
		t.Fatalf("dispatch order %v, want %s", got, want)
	}
}

// A flood of interactive work does not starve background: the background
// job's pass stays behind the advancing interactive pass, so it is
// dispatched long before the flood drains.
func TestSchedulerNoStarvation(t *testing.T) {
	s := newScheduler(64, nil)
	for i := 0; i < 10; i++ {
		if err := s.enqueue(schedJob("i", PriorityInteractive, 6400)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.enqueue(schedJob("bg", PriorityBackground, 200)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		j, ok := s.next()
		if !ok {
			t.Fatal("scheduler closed early")
		}
		if j.id == "bg" {
			return
		}
	}
	t.Fatal("background job not dispatched within 3 slots of an interactive flood")
}

// The backlog cap rejects over-admission, remove unlinks queued jobs, and
// drain hands back the remainder exactly once.
func TestSchedulerCapRemoveDrain(t *testing.T) {
	s := newScheduler(2, nil)
	a := schedJob("a", PriorityBatch, 100)
	b := schedJob("b", PriorityInteractive, 100)
	if err := s.enqueue(a); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(b); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(schedJob("c", PriorityBatch, 100)); err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("over-cap enqueue: %v, want queue-full error", err)
	}
	if !s.remove(a) {
		t.Fatal("remove missed a queued job")
	}
	if s.remove(a) {
		t.Fatal("double remove succeeded")
	}
	if got := s.depth(); got != 1 {
		t.Fatalf("depth = %d, want 1", got)
	}
	if by := s.depthByClass(); by[string(PriorityInteractive)] != 1 || len(by) != 1 {
		t.Fatalf("depthByClass = %v", by)
	}
	rest := s.drain()
	if len(rest) != 1 || rest[0] != b {
		t.Fatalf("drain returned %v", rest)
	}
	if _, ok := s.next(); ok {
		t.Fatal("next succeeded after drain")
	}
	if err := s.enqueue(schedJob("d", PriorityBatch, 1)); err == nil {
		t.Fatal("enqueue succeeded after drain")
	}
}

// Promote moves a queued job between classes so a coalesced interactive
// submitter drags a shared batch job forward.
func TestSchedulerPromote(t *testing.T) {
	s := newScheduler(16, nil)
	slow := schedJob("slow", PriorityBackground, 1000)
	shared := schedJob("shared", PriorityBackground, 1000)
	if err := s.enqueue(slow); err != nil {
		t.Fatal(err)
	}
	if err := s.enqueue(shared); err != nil {
		t.Fatal(err)
	}
	if !s.promote(shared, PriorityInteractive) {
		t.Fatal("promote missed a queued job")
	}
	shared.spec.Priority = PriorityInteractive
	j, ok := s.next()
	if !ok || j != shared {
		t.Fatalf("first dispatch = %v, want the promoted job", j)
	}
	if j, ok = s.next(); !ok || j != slow {
		t.Fatalf("second dispatch = %v, want the background job", j)
	}
}
